# Convenience targets for the Phoenix reproduction.

GO ?= go

.PHONY: all build test race vet ci bench bench-hotpath docs-check faults runner service sharded gang admission nightly nightly-report experiments figures clean

all: build test

# Everything CI runs, in the same order (see .github/workflows/ci.yml).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/...
	$(MAKE) bench-hotpath
	$(MAKE) faults
	$(MAKE) runner
	$(MAKE) service
	$(MAKE) sharded
	$(MAKE) gang
	$(MAKE) admission
	$(MAKE) docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full benchmark harness: one bench per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path microbenchmarks, one iteration each: a cheap CI smoke that the
# match cache, streaming counts, and candidate lookup still compile, run,
# and report their allocation profiles.
bench-hotpath:
	$(GO) test -run '^$$' -bench 'MatchCache|Satisfying|CandidateWorkers' -benchtime=1x -benchmem ./internal/cluster/ .

# Fault-campaign smoke: a short mixed scenario (outage + slowdown + probe
# loss) against every bundled scheduler, invariant checker attached, under
# the race detector.
faults:
	$(GO) test -race -count=1 -run 'TestFaultCampaignSmoke' ./internal/faults/

# Live-service smoke: the service-mode determinism/cancel-drain and
# bounded-memory soak batteries under the race detector, then a short
# open-loop CLI run with the invariant checker attached.
service:
	$(GO) test -race -count=1 -run 'TestService|TestSoak' ./internal/sched/ ./internal/telemetry/
	$(GO) run ./cmd/phoenix-sim -service -scale 0.05 -duration 60 -window 10 -validate -digest

# Godoc coverage gate: fail on any exported identifier without a doc
# comment in the gated packages (docs-check's defaultDirs is the single
# source of truth for the list).
docs-check:
	$(GO) run ./cmd/docs-check

# Sharded scale-out smoke: the shard-1 byte-identity and 4-shard battery
# under the race detector, then a CLI golden diff — a 4-shard run must
# complete clean and a -shards 1 run must print the exact digest of the
# unsharded reference.
sharded:
	$(GO) test -race -count=1 -run 'TestShard' ./internal/schedulers/sharded/ ./internal/cluster/
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -profile google -scale 0.05 -seed 7 -digest | tee /tmp/sharded-ref.txt
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -shards 1 -profile google -scale 0.05 -seed 7 -digest | tee /tmp/sharded-one.txt
	diff /tmp/sharded-ref.txt /tmp/sharded-one.txt
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -shards 4 -profile google -scale 0.05 -seed 7 -validate -digest

# Policy plug-in smoke: the pass-through/determinism/invariant batteries
# under the race detector, then two CLI golden diffs — a zero-fraction run
# under the full policy stack must print the exact digest of the bare
# scheduler (the invisibility contract; only the scheduler-name line may
# differ), and a gang-flavored stacked run must complete with the
# invariant checker clean.
gang:
	$(GO) test -race -count=1 ./internal/schedulers/policies/
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -profile google -scale 0.05 -seed 7 -digest | grep '^digest' | tee /tmp/gang-ref.txt
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -policies gang,preempt,backfill -profile google -scale 0.05 -seed 7 -digest | grep '^digest' | tee /tmp/gang-wrapped.txt
	diff /tmp/gang-ref.txt /tmp/gang-wrapped.txt
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -policies gang,backfill -gang-fraction 0.3 -priority-fraction 0.2 -profile google -scale 0.05 -seed 7 -validate -digest

# Admission-control smoke: the stability/determinism/sentinel battery
# under the race detector, then two CLI checks — an -admission off run
# must print the exact digest of the plain reference (the off-state
# invisibility contract), and a feedback-controller run under the
# supply-loss campaign must complete with the invariant checker clean.
admission:
	$(GO) test -race -count=1 ./internal/admission/
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -profile google -scale 0.05 -seed 7 -digest | grep '^digest' | tee /tmp/admission-ref.txt
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -admission off -profile google -scale 0.05 -seed 7 -digest | grep '^digest' | tee /tmp/admission-off.txt
	diff /tmp/admission-ref.txt /tmp/admission-off.txt
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -admission controller -faults scenarios/supply-loss.json -profile google -scale 0.05 -seed 7 -validate -digest

# Parallel-runner smoke: diff the golden digest corpus, then exercise the
# -jobs worker pool end to end through the CLI. The jobs=1 vs jobs=8
# byte-identity battery itself (TestJobsDeterminism*) runs under the race
# detector as part of the `go test -race ./internal/...` step above.
runner:
	$(GO) test -count=1 -run 'TestGoldenDigestCorpus' ./internal/experiments/
	$(GO) run ./cmd/experiments -run ext-designspace -scale 0.05 -seeds 2 -jobs 8 -digest

# Nightly regression gate (see .github/workflows/nightly.yml): diff the
# golden digest corpus at scale 0.05, re-run the scale-1.0 reference and
# diff its digest against results/digest-scale1.golden, then run the
# engine + service benchmarks and gate ns/op against the committed
# BENCH_*.json baselines via cmd/benchgate (>15% regression fails).
NIGHTLY_BENCH ?= /tmp/nightly-bench.txt
nightly:
	$(GO) test -count=1 -run 'TestGoldenDigestCorpus' ./internal/experiments/
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -profile google -scale 1.0 -seed 7 -digest | tee /tmp/nightly-scale1.txt
	grep -q "$$(awk '!/^#/ {print $$2}' results/digest-scale1.golden)" /tmp/nightly-scale1.txt
	$(GO) test -run '^$$' -bench 'BenchmarkEngineQueue' -benchmem -benchtime=2s ./internal/simulation/ > $(NIGHTLY_BENCH)
	$(GO) test -run '^$$' -bench 'BenchmarkServiceWindow' -benchmem -benchtime=2s ./internal/telemetry/ >> $(NIGHTLY_BENCH)
	$(GO) test -run '^$$' -bench 'BenchmarkScaleOne' -benchmem -benchtime=3x . >> $(NIGHTLY_BENCH)
	$(GO) test -run '^$$' -bench 'BenchmarkSharded' -benchmem -benchtime=3x . >> $(NIGHTLY_BENCH)
	$(GO) test -run '^$$' -bench 'BenchmarkGang$$' -benchmem -benchtime=3x . >> $(NIGHTLY_BENCH)
	$(GO) test -run '^$$' -bench 'BenchmarkAdmission$$' -benchmem -benchtime=2s ./internal/admission/ >> $(NIGHTLY_BENCH)
	$(GO) run ./cmd/benchgate -threshold 0.15 -input $(NIGHTLY_BENCH) results/BENCH_engine.json results/BENCH_service.json results/BENCH_sharded.json results/BENCH_gang.json results/BENCH_admission.json

# Nightly run-report artifact (see .github/workflows/nightly.yml): re-run
# the scale-1.0 phoenix/google reference with telemetry attached and write
# the Markdown run report plus its per-interval time series into
# NIGHTLY_REPORT_DIR, which the workflow uploads as a build artifact.
NIGHTLY_REPORT_DIR ?= /tmp/nightly-report
nightly-report:
	mkdir -p $(NIGHTLY_REPORT_DIR)
	$(GO) run ./cmd/phoenix-sim -scheduler phoenix -profile google -scale 1.0 -seed 7 \
		-report $(NIGHTLY_REPORT_DIR)/report-google-phoenix.md \
		-timeseries $(NIGHTLY_REPORT_DIR)/report-google-phoenix.csv

# Regenerate every paper table/figure (tables to stdout, CSVs + SVGs to
# results/). JOBS bounds concurrent work units; 0 means GOMAXPROCS.
JOBS ?= 0
experiments:
	$(GO) run ./cmd/experiments -run all -jobs $(JOBS) -csv results -svg results/figures

figures: experiments

clean:
	$(GO) clean ./...
