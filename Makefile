# Convenience targets for the Phoenix reproduction.

GO ?= go

.PHONY: all build test race vet ci bench experiments figures clean

all: build test

# Everything CI runs, in the same order (see .github/workflows/ci.yml).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Full benchmark harness: one bench per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure (tables to stdout, CSVs + SVGs to results/).
experiments:
	$(GO) run ./cmd/experiments -run all -csv results -svg results/figures

figures: experiments

clean:
	$(GO) clean ./...
