package phoenix

import (
	"github.com/phoenix-sched/phoenix/internal/cluster"
	"github.com/phoenix-sched/phoenix/internal/constraint"
	"github.com/phoenix-sched/phoenix/internal/core"
	"github.com/phoenix-sched/phoenix/internal/experiments"
	"github.com/phoenix-sched/phoenix/internal/metrics"
	"github.com/phoenix-sched/phoenix/internal/sched"
	"github.com/phoenix-sched/phoenix/internal/schedulers/centralized"
	"github.com/phoenix-sched/phoenix/internal/schedulers/eagle"
	"github.com/phoenix-sched/phoenix/internal/schedulers/hawk"
	"github.com/phoenix-sched/phoenix/internal/schedulers/sparrow"
	"github.com/phoenix-sched/phoenix/internal/schedulers/yaccd"
	"github.com/phoenix-sched/phoenix/internal/simulation"
	"github.com/phoenix-sched/phoenix/internal/trace"
)

// This file is the library's public API: a facade over the internal
// packages, so downstream modules can build clusters, generate workloads,
// run schedulers, and read metrics without reaching into internal paths.
// The aliases are the same types the rest of the repository uses — no
// wrapping, no copying.

// Virtual time.
type (
	// Time is a virtual timestamp/duration in microseconds.
	Time = simulation.Time
	// RNG derives deterministic named random streams for a run.
	RNG = simulation.RNG
)

// Common durations.
const (
	Microsecond = simulation.Microsecond
	Millisecond = simulation.Millisecond
	Second      = simulation.Second
	Minute      = simulation.Minute
)

// NewRNG returns a deterministic random source for seed.
func NewRNG(seed uint64) *RNG { return simulation.NewRNG(seed) }

// Cluster substrate.
type (
	// Cluster is an immutable heterogeneous machine set with a constraint
	// index.
	Cluster = cluster.Cluster
	// ClusterProfile describes a hardware mix as weighted configuration
	// families.
	ClusterProfile = cluster.Profile
	// Machine is one worker node's hardware description.
	Machine = cluster.Machine
)

// Built-in hardware mixes patterned on the paper's three traces.
var (
	GoogleCluster   = cluster.GoogleProfile
	YahooCluster    = cluster.YahooProfile
	ClouderaCluster = cluster.ClouderaProfile
)

// Constraint model.
type (
	// Constraint is one placement requirement: dimension <op> value.
	Constraint = constraint.Constraint
	// ConstraintSet is a task's conjunction of constraints.
	ConstraintSet = constraint.Set
	// Attributes is a machine's value on every constraint dimension.
	Attributes = constraint.Attributes
	// CRV is a Constraint Resource Vector: one demand/supply ratio per
	// dimension.
	CRV = constraint.Vector
)

// Workload substrate.
type (
	// Trace is a complete workload: jobs of tasks with arrivals,
	// durations, and constraints.
	Trace = trace.Trace
	// Job is a set of tasks arriving together.
	Job = trace.Job
	// Task is one unit of work.
	Task = trace.Task
	// WorkloadConfig parameterizes the synthetic generators.
	WorkloadConfig = trace.GeneratorConfig
	// TraceSummary aggregates a workload's headline statistics.
	TraceSummary = trace.Summary
)

// Built-in workload profiles calibrated to the paper's published
// statistics; scale 1.0 is paper scale (15,000 nodes for Google).
var (
	GoogleWorkload   = trace.GoogleConfig
	YahooWorkload    = trace.YahooConfig
	ClouderaWorkload = trace.ClouderaConfig
)

// GenerateTrace produces a deterministic synthetic workload whose
// constraints are anchored to the given cluster's machine configurations.
func GenerateTrace(cfg WorkloadConfig, cl *Cluster, seed uint64) (*Trace, error) {
	return trace.Generate(cfg, cl, seed)
}

// SummarizeTrace computes a workload's summary statistics.
func SummarizeTrace(t *Trace) TraceSummary { return trace.Summarize(t) }

// ReadTraceFile / WriteTraceFile round-trip traces as JSONL.
var (
	ReadTraceFile  = trace.ReadFile
	WriteTraceFile = trace.WriteFile
)

// Scheduling framework.
type (
	// Scheduler is the interface every scheduling policy implements.
	Scheduler = sched.Scheduler
	// Driver runs one trace through one scheduler on one cluster.
	Driver = sched.Driver
	// SimConfig carries the shared simulation parameters (probe ratio,
	// heartbeat, network delay, failure injection, ...).
	SimConfig = sched.Config
	// Result summarizes one run.
	Result = sched.Result
	// Worker is one single-slot execution node.
	Worker = sched.Worker
	// JobState is the driver's bookkeeping for one in-flight job.
	JobState = sched.JobState
)

// DefaultSimConfig returns the paper's simulation parameters.
func DefaultSimConfig() SimConfig { return sched.DefaultConfig() }

// NewDriver constructs a run; Result comes from Driver.Run.
func NewDriver(cfg SimConfig, cl *Cluster, tr *Trace, s Scheduler, seed uint64) (*Driver, error) {
	return sched.NewDriver(cfg, cl, tr, s, seed)
}

// Phoenix, the paper's contribution.
type (
	// PhoenixOptions configure the Phoenix scheduler.
	PhoenixOptions = core.Options
	// PhoenixScheduler is the constraint-aware hybrid scheduler.
	PhoenixScheduler = core.Scheduler
)

// DefaultPhoenixOptions returns the paper-calibrated configuration.
func DefaultPhoenixOptions() PhoenixOptions { return core.DefaultOptions() }

// NewPhoenix constructs the Phoenix scheduler.
func NewPhoenix(opts PhoenixOptions) (*PhoenixScheduler, error) { return core.New(opts) }

// Baseline schedulers from the paper's evaluation.

// NewEagleC constructs the Eagle-C baseline (hybrid, SSS + SBP + SRPT).
func NewEagleC() Scheduler { return eagle.New() }

// NewHawkC constructs the Hawk-C baseline (hybrid, random work stealing).
func NewHawkC() (Scheduler, error) { return hawk.New(hawk.DefaultOptions()) }

// NewSparrowC constructs the Sparrow-C baseline (fully distributed batch
// sampling).
func NewSparrowC() Scheduler { return sparrow.New() }

// NewYaccD constructs the Yacc-D baseline (early binding with bounded
// queues).
func NewYaccD() (Scheduler, error) { return yaccd.New(yaccd.DefaultOptions()) }

// NewCentralized constructs the Borg-like monolithic baseline.
func NewCentralized() (Scheduler, error) { return centralized.New(centralized.DefaultOptions()) }

// Metrics.
type (
	// Collector holds per-job outcomes and scheduler counters.
	Collector = metrics.Collector
	// JobRecord is the outcome of one job.
	JobRecord = metrics.JobRecord
	// Filter selects a subset of job records.
	Filter = metrics.Filter
	// P50P90P99 is the percentile triple the paper reports everywhere.
	P50P90P99 = metrics.P50P90P99
)

// Standard job filters.
var (
	AllJobs            = metrics.All
	ShortJobs          = metrics.Short
	LongJobs           = metrics.Long
	ConstrainedJobs    = metrics.Constrained
	UnconstrainedJobs  = metrics.Unconstrained
	FilterAnd          = metrics.AndFilter
	ResponsePercentile = metrics.Percentile
)

// Experiments: regenerate the paper's tables and figures.
type (
	// ExperimentOptions scope an experiment run (scale, seeds, sweep).
	ExperimentOptions = experiments.Options
	// Report is a printable experiment result.
	Report = experiments.Report
)

// Experiment runners.
var (
	// ExperimentIDs lists every experiment identifier.
	ExperimentIDs = experiments.IDs
	// RunExperiment regenerates one experiment by ID.
	RunExperiment = experiments.Run
	// DefaultExperimentOptions returns laptop-scale settings.
	DefaultExperimentOptions = experiments.DefaultOptions
)
