package phoenix_test

import (
	"strconv"
	"testing"

	"github.com/phoenix-sched/phoenix/internal/cluster"
	"github.com/phoenix-sched/phoenix/internal/core"
	"github.com/phoenix-sched/phoenix/internal/experiments"
	"github.com/phoenix-sched/phoenix/internal/metrics"
	"github.com/phoenix-sched/phoenix/internal/sched"
	"github.com/phoenix-sched/phoenix/internal/schedulers/policies"
	"github.com/phoenix-sched/phoenix/internal/schedulers/sharded"
	"github.com/phoenix-sched/phoenix/internal/simulation"
	"github.com/phoenix-sched/phoenix/internal/trace"
	"github.com/phoenix-sched/phoenix/internal/validate"
)

// benchOptions is the scaled-down configuration the benchmark harness
// uses: every ratio of the paper-scale experiments is preserved, but node
// and job counts shrink so `go test -bench=.` finishes in minutes. Raise
// Scale (and Seeds) to approach the paper's absolute numbers.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Scale = 0.06
	o.Seeds = 2
	return o
}

// benchExperiment regenerates one paper table/figure per iteration and
// reports the first data row's last column as a custom metric so that
// benchmark logs double as a coarse regression record of the science, not
// just the speed.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) > 0 {
			row := rep.Rows[0]
			if v, err := strconv.ParseFloat(row[len(row)-1], 64); err == nil {
				b.ReportMetric(v, "row0")
			}
		}
	}
}

// One benchmark per table and figure of the paper's evaluation (§V-VI).

func BenchmarkFig2aYahooQueuingCDF(b *testing.B)    { benchExperiment(b, "fig2a") }
func BenchmarkFig2bClouderaQueuingCDF(b *testing.B) { benchExperiment(b, "fig2b") }
func BenchmarkFig3QueuingTimeSeries(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4aYahooPenalty(b *testing.B)       { benchExperiment(b, "fig4a") }
func BenchmarkFig4bClouderaPenalty(b *testing.B)    { benchExperiment(b, "fig4b") }
func BenchmarkFig4cGooglePenalty(b *testing.B)      { benchExperiment(b, "fig4c") }
func BenchmarkFig6SupplyDemand(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7aYahooVsEagle(b *testing.B)       { benchExperiment(b, "fig7a") }
func BenchmarkFig7bClouderaVsEagle(b *testing.B)    { benchExperiment(b, "fig7b") }
func BenchmarkFig7cGoogleVsEagle(b *testing.B)      { benchExperiment(b, "fig7c") }
func BenchmarkFig8aYahooLongJobs(b *testing.B)      { benchExperiment(b, "fig8a") }
func BenchmarkFig8bClouderaLongJobs(b *testing.B)   { benchExperiment(b, "fig8b") }
func BenchmarkFig8cGoogleLongJobs(b *testing.B)     { benchExperiment(b, "fig8c") }
func BenchmarkFig9QueuingDelayBreakdown(b *testing.B) {
	benchExperiment(b, "fig9")
}
func BenchmarkFig10VsHawk(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11VsSparrow(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkTableIIConstraintSlowdowns(b *testing.B) {
	benchExperiment(b, "table2")
}
func BenchmarkTableIIIReorderingStats(b *testing.B) { benchExperiment(b, "table3") }

// Supporting design-space explorations (paper §V-A / §VI-C prose) and
// extension experiments.

func BenchmarkSensProbeRatio(b *testing.B)       { benchExperiment(b, "sens-probe") }
func BenchmarkSensHeartbeat(b *testing.B)        { benchExperiment(b, "sens-heartbeat") }
func BenchmarkExtDesignSpace(b *testing.B)       { benchExperiment(b, "ext-designspace") }
func BenchmarkExtPlacementImpact(b *testing.B)   { benchExperiment(b, "ext-placement") }
func BenchmarkExtFailureImpact(b *testing.B)     { benchExperiment(b, "ext-failures") }
func BenchmarkExtFairness(b *testing.B)          { benchExperiment(b, "ext-fairness") }
func BenchmarkExtEstimatorAccuracy(b *testing.B) { benchExperiment(b, "ext-estimator") }

// BenchmarkScaleOne is the engine-speed reference: the full phoenix/google
// batch run at paper scale (-scale 1.0, simulation seed 7), the same
// workload `phoenix-sim -scheduler phoenix -profile google -scale 1.0
// -seed 7` executes. One iteration is one complete run; ns/op is the
// wall-clock of simulating the paper-scale day. Recorded in
// results/BENCH_engine.json and gated by cmd/benchgate in nightly CI.
func BenchmarkScaleOne(b *testing.B) {
	cfg, err := trace.ConfigByName("google", 1.0)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.GoogleProfile().GenerateCluster(cfg.NumNodes, simulation.NewRNG(42).Stream("cli/machines"))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(cfg, cl, 1000)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := opts.NewScheduler("phoenix")
		if err != nil {
			b.Fatal(err)
		}
		d, err := sched.NewDriver(sched.DefaultConfig(), cl, tr, s, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharded is the scale-out reference: the same paper-scale
// phoenix/google workload as BenchmarkScaleOne, run through the sharded
// meta-scheduler at 4 shards (`phoenix-sim -scheduler phoenix -shards 4
// -profile google -scale 1.0 -seed 7`). The delta against BenchmarkScaleOne
// is the full overhead of partitioned match state plus optimistic-commit
// bookkeeping on a single host; the payoff sharding buys — smaller per-shard
// candidate sets — is measured by the ext-sharded experiment's wall-clock
// sweep at 10x scale. Recorded in results/BENCH_sharded.json and gated by
// cmd/benchgate in nightly CI.
func BenchmarkSharded(b *testing.B) {
	cfg, err := trace.ConfigByName("google", 1.0)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.GoogleProfile().GenerateCluster(cfg.NumNodes, simulation.NewRNG(42).Stream("cli/machines"))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(cfg, cl, 1000)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sharded.NewWith("phoenix", 4, func() (sched.Scheduler, error) {
			return opts.NewScheduler("phoenix")
		})
		if err != nil {
			b.Fatal(err)
		}
		d, err := sched.NewDriver(sched.DefaultConfig(), cl, tr, s, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGang is the policy-layer reference: the paper-scale
// phoenix/google workload regenerated with ext-gang's mix (20% of long
// multi-task jobs as gangs, 15% of long jobs high-priority) and run
// through the full backfill(preempt(gang(phoenix))) stack, the workload
// `phoenix-sim -scheduler phoenix -policies gang,preempt,backfill
// -gang-fraction 0.2 -priority-fraction 0.15 -scale 1.0 -seed 7`
// executes. The delta against BenchmarkScaleOne is the reservation,
// sweep, and backfill bookkeeping at paper scale. Recorded in
// results/BENCH_gang.json and gated by cmd/benchgate in nightly CI.
func BenchmarkGang(b *testing.B) {
	cfg, err := trace.ConfigByName("google", 1.0)
	if err != nil {
		b.Fatal(err)
	}
	cfg.GangFraction = 0.2
	cfg.PriorityFraction = 0.15
	cl, err := cluster.GoogleProfile().GenerateCluster(cfg.NumNodes, simulation.NewRNG(42).Stream("cli/machines"))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(cfg, cl, 1000)
	if err != nil {
		b.Fatal(err)
	}
	opts := experiments.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := opts.NewScheduler("phoenix")
		if err != nil {
			b.Fatal(err)
		}
		s, err = policies.Wrap(s, []string{"gang", "preempt", "backfill"})
		if err != nil {
			b.Fatal(err)
		}
		d, err := sched.NewDriver(sched.DefaultConfig(), cl, tr, s, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches quantify the design choices DESIGN.md calls out: each
// runs Phoenix with one mechanism toggled and reports the constrained
// short-job p99 (seconds) as a custom metric, so `-bench Ablation` prints a
// side-by-side of the variants.

// ablationBed builds a fixed google-profile testbed at high load.
func ablationBed(b *testing.B) (*cluster.Cluster, *trace.Trace) {
	b.Helper()
	cfg := trace.GoogleConfig(0.08)
	cl, err := cluster.GoogleProfile().GenerateCluster(cfg.NumNodes, simulation.NewRNG(42).Stream("bench/machines"))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(cfg, cl, 1000)
	if err != nil {
		b.Fatal(err)
	}
	return cl, tr
}

func benchAblation(b *testing.B, mutate func(*core.Options)) {
	b.Helper()
	cl, tr := ablationBed(b)
	opts := core.DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		d, err := sched.NewDriver(sched.DefaultConfig(), cl, tr, p, 7)
		if err != nil {
			b.Fatal(err)
		}
		res, err := d.Run()
		if err != nil {
			b.Fatal(err)
		}
		p99 := res.Collector.ResponsePercentiles(metrics.AndFilter(metrics.Short, metrics.Constrained)).P99
		b.ReportMetric(p99, "conP99s")
	}
}

// BenchmarkAblationFull is Phoenix with every mechanism at its default.
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, nil) }

// BenchmarkAblationNoCRVReordering disables the CRV queue discipline
// (workers keep SRPT even when marked).
func BenchmarkAblationNoCRVReordering(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.CRVReordering = false })
}

// BenchmarkAblationNoRescheduling disables heartbeat probe rescheduling.
func BenchmarkAblationNoRescheduling(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.RescheduleBudget = 0 })
}

// BenchmarkAblationNoWaitAwareProbing disables estimator-guided probe
// placement (uniform sampling even during contention).
func BenchmarkAblationNoWaitAwareProbing(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.WaitAwareProbing = false })
}

// BenchmarkAblationBareEagleEquivalent turns every Phoenix mechanism off,
// leaving the Eagle-equivalent hybrid core.
func BenchmarkAblationBareEagleEquivalent(b *testing.B) {
	benchAblation(b, func(o *core.Options) {
		o.CRVReordering = false
		o.WaitAwareProbing = false
		o.RescheduleBudget = 0
	})
}

// BenchmarkAblationSlack2/10 sweep the starvation threshold around the
// paper's value of 5.
func BenchmarkAblationSlack2(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Slack = 2 })
}
func BenchmarkAblationSlack10(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.Slack = 10 })
}

// BenchmarkAblationRareFamilyReserve enables the rare-hardware reserve the
// default configuration leaves off (DESIGN.md §5 explains why carving
// capacity out loses when long jobs dominate total work).
func BenchmarkAblationRareFamilyReserve(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.RareFamilyFraction = 0.05 })
}

// BenchmarkAblationDemandScorePlacement enables demand-credit long-job
// placement tie-breaking.
func BenchmarkAblationDemandScorePlacement(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.DemandScorePlacement = true })
}

// BenchmarkDriverThroughput measures raw simulation speed: tasks simulated
// per second of wall clock for the full Phoenix stack.
func BenchmarkDriverThroughput(b *testing.B) {
	cl, tr := ablationBed(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.New(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		d, err := sched.NewDriver(sched.DefaultConfig(), cl, tr, p, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.NumTasks()*b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkValidatedDriverThroughput is BenchmarkDriverThroughput with the
// invariant checker attached: the delta between the two is the full cost of
// always-on validation, and every iteration asserts a clean run and a
// stable digest (same seed, same digest — checked against iteration 0).
func BenchmarkValidatedDriverThroughput(b *testing.B) {
	cl, tr := ablationBed(b)
	var refDigest uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := core.New(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		d, err := sched.NewDriver(sched.DefaultConfig(), cl, tr, p, 7)
		if err != nil {
			b.Fatal(err)
		}
		chk := validate.Attach(d)
		res, err := d.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := chk.Finalize(); err != nil {
			b.Fatal(err)
		}
		dig := res.Collector.Digest()
		if i == 0 {
			refDigest = dig
		} else if dig != refDigest {
			b.Fatalf("iteration %d digest %016x differs from %016x", i, dig, refDigest)
		}
	}
	b.ReportMetric(float64(tr.NumTasks()*b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkRunDigest isolates the digest computation itself over a
// realistic collector.
func BenchmarkRunDigest(b *testing.B) {
	cl, tr := ablationBed(b)
	p, err := core.New(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	d, err := sched.NewDriver(sched.DefaultConfig(), cl, tr, p, 7)
	if err != nil {
		b.Fatal(err)
	}
	res, err := d.Run()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= res.Collector.Digest()
	}
	_ = sink
}

// candidateBed builds a driver plus the job states of every constrained
// job in the trace, for exercising the candidate-worker hot path the way
// submission does.
func candidateBed(b *testing.B) (*sched.Driver, []*sched.JobState) {
	b.Helper()
	cl, tr := ablationBed(b)
	p, err := core.New(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	d, err := sched.NewDriver(sched.DefaultConfig(), cl, tr, p, 7)
	if err != nil {
		b.Fatal(err)
	}
	var jss []*sched.JobState
	for i := range tr.Jobs {
		cs := tr.Jobs[i].Constraints()
		if len(cs) == 0 {
			continue
		}
		jss = append(jss, &sched.JobState{
			Job:            &tr.Jobs[i],
			Constraints:    cs,
			ConstraintDims: cs.Dims(),
			Constrained:    true,
			Short:          true,
		})
	}
	if len(jss) == 0 {
		b.Fatal("trace has no constrained jobs")
	}
	return d, jss
}

// BenchmarkCandidateWorkersCached measures the submission hot path with the
// match cache warm: repeat queries must be lock-protected map hits with
// zero allocations.
func BenchmarkCandidateWorkersCached(b *testing.B) {
	d, jss := candidateBed(b)
	for _, js := range jss {
		d.CandidateWorkers(js)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.CandidateWorkers(jss[i%len(jss)])
	}
}

// BenchmarkCandidateWorkersUncached is the pre-cache implementation of the
// same query — materialize the satisfying set per call — as the allocs/op
// baseline the cached path is judged against.
func BenchmarkCandidateWorkersUncached(b *testing.B) {
	d, jss := candidateBed(b)
	cl := d.Cluster()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Satisfying(jss[i%len(jss)].Constraints)
	}
}
